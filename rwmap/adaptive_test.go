package rwmap

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rwsync/rwlock"
)

// exactConfig is the deterministic adaptive configuration the tests
// drive: every op sampled, tiny windows, a low threshold — promotion
// behavior depends only on the op sequence.
func exactConfig(budget int) AdaptiveConfig {
	return AdaptiveConfig{
		HotSet:      budget,
		SampleEvery: 1,
		WindowLen:   64,
		PromoteAt:   4,
		DemoteBelow: 2,
	}
}

// keyOn finds a key landing on the given stripe.
func keyOn[V any](m *Map[int, V], stripe int) int {
	for k := 0; ; k++ {
		if int(m.indexOf(k)) == stripe {
			return k
		}
	}
}

// TestGetOrCompute: sequential contract — miss fills and reports
// loaded=false, hit returns the stored value without running fill.
func TestGetOrCompute(t *testing.T) {
	m := New[string, int](WithStripes(4))
	calls := 0
	v, loaded := m.GetOrCompute("a", func() int { calls++; return 42 })
	if loaded || v != 42 || calls != 1 {
		t.Fatalf("miss: got (%d,%v) after %d fills, want (42,false) after 1", v, loaded, calls)
	}
	v, loaded = m.GetOrCompute("a", func() int { calls++; return 99 })
	if !loaded || v != 42 || calls != 1 {
		t.Fatalf("hit: got (%d,%v) after %d fills, want (42,true) after 1", v, loaded, calls)
	}
	m.Put("a", 7)
	if v, _ = m.GetOrCompute("a", func() int { calls++; return 0 }); v != 7 || calls != 1 {
		t.Fatalf("hit after Put: got %d after %d fills, want 7 after 1", v, calls)
	}
}

// TestGetOrComputeSingleFlight: of any set of concurrent callers for
// one missing key, exactly one runs fill — the write-upgrade re-check
// closes the Get-miss/Put lost-update window the two-acquisition
// sequence has.
func TestGetOrComputeSingleFlight(t *testing.T) {
	for name, opts := range map[string][]Option{
		"slim":     {WithStripes(1)},
		"adaptive": {WithStripes(1), WithAdaptiveLocks(exactConfig(1))},
	} {
		t.Run(name, func(t *testing.T) {
			m := New[int, int](opts...)
			var fills, start atomic.Int64
			const callers = 16
			var wg sync.WaitGroup
			results := make([]int, callers)
			for i := range callers {
				wg.Add(1)
				go func() {
					defer wg.Done()
					start.Add(1)
					for start.Load() < callers { // line everyone up on the miss
					}
					results[i], _ = m.GetOrCompute(0, func() int {
						return int(fills.Add(1)) * 1000
					})
				}()
			}
			wg.Wait()
			if fills.Load() != 1 {
				t.Fatalf("fill ran %d times for one missing key, want 1", fills.Load())
			}
			for i, r := range results {
				if r != 1000 {
					t.Fatalf("caller %d got %d, want the single fill's 1000", i, r)
				}
			}
		})
	}
}

// TestAdaptivePromoteDemote: hot traffic promotes a stripe to a full
// wrapper within the budget; when the traffic moves away the window
// sweep demotes it back to the original Slim lock.
func TestAdaptivePromoteDemote(t *testing.T) {
	for name, proto := range map[string]Protocol{"bravo": PromoteBravo, "epoch": PromoteEpoch} {
		t.Run(name, func(t *testing.T) {
			cfg := exactConfig(2)
			cfg.Protocol = proto
			m := New[int, int](WithStripes(4), WithAdaptiveLocks(cfg))
			hotK, coldK := keyOn(m, 0), keyOn(m, 1)
			coldLock := m.LockOf(hotK)
			for i := range 200 {
				m.Put(hotK, i)
			}
			st := m.Stats()
			if st.Promotions < 1 || st.HotSetSize != 1 || st.Hot[0] != 0 {
				t.Fatalf("hot traffic did not promote stripe 0: %+v", st)
			}
			switch l := m.LockOf(hotK); proto {
			case PromoteBravo:
				if _, ok := l.(*rwlock.Bravo); !ok {
					t.Fatalf("promoted lock is %T, want *rwlock.Bravo", l)
				}
			case PromoteEpoch:
				if _, ok := l.(*rwlock.Epoch); !ok {
					t.Fatalf("promoted lock is %T, want *rwlock.Epoch", l)
				}
			}
			if v, ok := m.Get(hotK); !ok || v != 199 {
				t.Fatalf("promoted stripe lost data: got (%d,%v)", v, ok)
			}
			// Move the traffic: two-plus quiet windows demote stripe 0.
			for i := range 3 * int(m.ad.windowLen) {
				m.Put(coldK, i)
			}
			st = m.Stats()
			if st.Demotions < 1 {
				t.Fatalf("cooled stripe was not demoted: %+v", st)
			}
			if l := m.LockOf(hotK); l != coldLock {
				t.Fatalf("demotion did not republish the original Slim lock (%T)", l)
			}
			if v, ok := m.Get(hotK); !ok || v != 199 {
				t.Fatalf("demoted stripe lost data: got (%d,%v)", v, ok)
			}
		})
	}
}

// TestAdaptiveBudget: the hot set never exceeds the budget even when
// many stripes qualify, and the high-water mark tracks it.
func TestAdaptiveBudget(t *testing.T) {
	m := New[int, int](WithStripes(16), WithAdaptiveLocks(exactConfig(3)))
	for i := range 10000 {
		m.Put(i%256, i) // spread hot traffic over every stripe
	}
	st := m.Stats()
	if st.HotSetSize > 3 || st.HotSetMax > 3 {
		t.Fatalf("hot set exceeded budget: %+v", st)
	}
	if st.Promotions < 3 {
		t.Fatalf("uniform hot traffic promoted only %d stripes under budget 3", st.Promotions)
	}
	if st.Demotions > st.Promotions {
		t.Fatalf("more demotions than promotions: %+v", st)
	}
}

// TestAdaptiveDeterminism: with every op sampled, the same hash seed
// and the same single-threaded op sequence land the same final hot
// set — promotion is a function of traffic, not of scheduling.
func TestAdaptiveDeterminism(t *testing.T) {
	run := func(seedFrom *Map[int, int]) *Map[int, int] {
		m := New[int, int](WithStripes(32), WithAdaptiveLocks(exactConfig(4)))
		if seedFrom != nil {
			m.seed = seedFrom.seed // same key→stripe mapping
		}
		// Zipf-flavored deterministic traffic: low keys hot.
		x := uint64(1)
		for range 20000 {
			x = x*6364136223846793005 + 1442695040888963407
			k := int(x>>33) % 64
			k = k * k / 64 // skew toward 0
			m.Put(k, int(x))
		}
		return m
	}
	m1 := run(nil)
	m2 := run(m1)
	h1, h2 := m1.Stats(), m2.Stats()
	if len(h1.Hot) == 0 {
		t.Fatal("skewed traffic promoted nothing")
	}
	if len(h1.Hot) != len(h2.Hot) {
		t.Fatalf("hot sets differ in size: %v vs %v", h1.Hot, h2.Hot)
	}
	for i := range h1.Hot {
		if h1.Hot[i] != h2.Hot[i] {
			t.Fatalf("hot sets differ: %v vs %v", h1.Hot, h2.Hot)
		}
	}
	if h1.Promotions != h2.Promotions || h1.Demotions != h2.Demotions {
		t.Fatalf("counter histories differ: %+v vs %+v", h1, h2)
	}
}

// TestAdaptiveSwapHammer is the -race witness for the swap protocol:
// readers, writers, Try- and Ctx-acquirers all race a goroutine that
// force-promotes and force-demotes the one stripe as fast as it can.
// Every map access below validates the published bundle after
// acquiring, exactly as the Map methods do; the race detector fails
// the test if any interleaving lets two sides into the map at once.
func TestAdaptiveSwapHammer(t *testing.T) {
	m := New[int, int](WithStripes(1), WithAdaptiveLocks(exactConfig(1)))
	s := &m.stripes[0]
	m.Put(0, 0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	spawn := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				f()
			}
		}()
	}

	// The swapper: promote, then sweep "from the far future" (any
	// window two past the counter's tag) so the stripe looks stale and
	// demotes — each iteration is a full promote/demote cycle racing
	// the traffic below.
	spawn(func() {
		m.promote(0)
		m.sweep(uint64(uint32(m.ad.hits[0].Load()>>32)) + 2)
	})
	// Plain readers and writers through the public surface.
	spawn(func() { m.Get(0) })
	spawn(func() { m.Put(0, 1) })
	spawn(func() {
		m.Update(0, func(v int, ok bool) (int, bool) { return v + 1, true })
	})
	spawn(func() {
		m.GetOrCompute(0, func() int { return -1 })
		m.Delete(1)
	})
	// Try-acquirers: validated exactly as the Map methods validate.
	spawn(func() {
		sl := s.cur.Load()
		if tl, ok := sl.lock.(rwlock.TryRWLock); ok {
			if tok, ok := tl.TryRLock(); ok {
				if s.cur.Load() == sl {
					_ = s.m[0]
				}
				sl.lock.RUnlock(tok)
			}
			if tok, ok := tl.TryLock(); ok {
				if s.cur.Load() == sl {
					s.m[0] = 2
				}
				sl.lock.Unlock(tok)
			}
		}
	})
	// Ctx-acquirers.
	spawn(func() {
		ctx := context.Background()
		sl := s.cur.Load()
		if cl, ok := sl.lock.(rwlock.CtxRWLock); ok {
			if tok, err := cl.RLockCtx(ctx); err == nil {
				if s.cur.Load() == sl {
					_ = s.m[0]
				}
				sl.lock.RUnlock(tok)
			}
			if tok, err := cl.LockCtx(ctx); err == nil {
				if s.cur.Load() == sl {
					s.m[0] = 3
				}
				sl.lock.Unlock(tok)
			}
		}
	})

	// Drive until the swapper has demonstrably cycled a few times (a
	// single-CPU box needs the yields to rotate the goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		for range 500 {
			m.Get(0)
		}
		runtime.Gosched()
		if st := m.Stats(); st.Promotions >= 3 && st.Demotions >= 3 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
	}
	stop.Store(true)
	wg.Wait()

	st := m.Stats()
	if st.Promotions == 0 || st.Demotions == 0 {
		t.Fatalf("hammer never cycled the lock: %+v", st)
	}
	if _, ok := m.Get(0); !ok {
		t.Fatal("key lost under the hammer")
	}
}

// TestServingPathAllocs pins the serving-tier hot paths at zero
// allocations: Get/Put/Update on Slim stripes, on promoted stripes,
// and with the sampler running every op in steady state (counters
// saturated, budget spent — the sampled path itself must not
// allocate).
func TestServingPathAllocs(t *testing.T) {
	update := func(v int, ok bool) (int, bool) { return v + 1, true }
	fill := func() int { return 0 }
	pin := func(t *testing.T, name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	check := func(t *testing.T, m *Map[int, int], k int) {
		t.Helper()
		m.Put(k, 0)
		pin(t, "Get", func() { m.Get(k) })
		pin(t, "Put", func() { m.Put(k, 1) })
		pin(t, "Update", func() { m.Update(k, update) })
		pin(t, "GetOrCompute hit", func() { m.GetOrCompute(k, fill) })
	}

	t.Run("slim", func(t *testing.T) {
		check(t, New[int, int](WithStripes(8)), 1)
	})
	t.Run("adaptive", func(t *testing.T) {
		m := New[int, int](WithStripes(8), WithAdaptiveLocks(exactConfig(1)))
		hotK := keyOn(m, 0)
		for i := range 200 { // promote stripe 0, spend the budget
			m.Put(hotK, i)
		}
		if st := m.Stats(); st.HotSetSize != 1 {
			t.Fatalf("setup did not promote: %+v", st)
		}
		t.Run("promoted stripe", func(t *testing.T) { check(t, m, hotK) })
		t.Run("cold stripe sampled", func(t *testing.T) { check(t, m, keyOn(m, 3)) })
	})
}
