package rwmap

import (
	"sort"

	"rwsync/rwlock"
)

// Per-stripe introspection: the heatmap snapshot the rwstats
// exporters serve.  Map.Stats answers "how is the adaptive machinery
// doing overall"; Heatmap answers "WHICH stripes are hot, what lock
// is each running right now, and how big is its shard" — the view
// that turns a promotion anomaly from a counter into a stripe index
// you can correlate with a key.

// StripeHeat describes one stripe of a Heatmap snapshot.
type StripeHeat struct {
	Index int `json:"index"`
	// Entries is the shard's entry count, read under the stripe's read
	// lock (consistent per stripe, like Len).
	Entries int `json:"entries"`
	// LockKind names the lock currently guarding the stripe
	// ("SlimBravo", "Bravo", "Epoch", ... — "other" for an
	// unrecognized WithLockFactory product).
	LockKind string `json:"lock_kind"`
	// Hot reports whether the stripe currently holds a promoted full
	// wrapper (always false on a non-adaptive Map).
	Hot bool `json:"hot"`
	// SampledHits is the stripe's sampled traffic count within the
	// window it was last touched in; Window is that window's tag.
	// Both are zero on a non-adaptive Map (no traffic counters exist).
	SampledHits uint32 `json:"sampled_hits"`
	Window      uint32 `json:"window"`
}

// Heatmap is a point-in-time per-stripe view of a Map.
type Heatmap struct {
	Stripes  int  `json:"stripes"`
	Adaptive bool `json:"adaptive"`
	// Window is the decision window the sampler is currently in
	// (sampled ops / WindowLen); stripes whose StripeHeat.Window lags
	// it saw no sampled traffic since that older window.
	Window uint64 `json:"window"`
	// Entries is the entry count summed over the REPORTED stripes
	// only (all of them when top <= 0); use Len for the whole Map.
	Entries int `json:"entries"`
	// Top holds the hottest stripes, most-sampled first.
	Top []StripeHeat `json:"top"`
}

// lockKind names a stripe lock for the heatmap.
func lockKind(l rwlock.RWLock) string {
	switch l.(type) {
	case *rwlock.SlimBravo:
		return "SlimBravo"
	case *rwlock.SlimEpoch:
		return "SlimEpoch"
	case *rwlock.Bravo:
		return "Bravo"
	case *rwlock.Epoch:
		return "Epoch"
	case *rwlock.MWSF:
		return "MWSF"
	case *rwlock.MWRP:
		return "MWRP"
	case *rwlock.MWWP:
		return "MWWP"
	case *rwlock.SWWP:
		return "SWWP"
	case *rwlock.SWRP:
		return "SWRP"
	default:
		return "other"
	}
}

// Heatmap snapshots the top hottest stripes.  On an adaptive Map heat
// is the sampled in-window traffic count (current window first, then
// previous windows by recency, then hits); on a non-adaptive Map —
// which has no traffic counters — heat is the shard entry count, so
// the view still ranks where the data lives.  top <= 0 or top >
// Stripes() means every stripe.
//
// Cost: on an adaptive Map, one atomic load per stripe to rank plus
// one read acquisition per REPORTED stripe; on a non-adaptive Map the
// entry-count ranking itself needs one read acquisition per stripe,
// i.e. Len cost.  The grid is never locked at once — at most one
// stripe lock is held at a time, like Range.  Safe for concurrent
// use; the snapshot is per-stripe consistent.
func (m *Map[K, V]) Heatmap(top int) Heatmap {
	n := len(m.stripes)
	if top <= 0 || top > n {
		top = n
	}
	h := Heatmap{Stripes: n, Adaptive: m.ad != nil}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var words []uint64
	if a := m.ad; a != nil {
		h.Window = a.sampled.Load() / a.windowLen
		words = make([]uint64, n)
		for i := range words {
			words[i] = a.hits[i].Load()
		}
		// Recent window first, then more hits within the same window.
		sort.Slice(order, func(x, y int) bool {
			wx, wy := words[order[x]], words[order[y]]
			if tx, ty := uint32(wx>>32), uint32(wy>>32); tx != ty {
				return tx > ty
			}
			if cx, cy := uint32(wx), uint32(wy); cx != cy {
				return cx > cy
			}
			return order[x] < order[y]
		})
	}

	report := func(idx []int) []StripeHeat {
		heat := make([]StripeHeat, 0, len(idx))
		for _, i := range idx {
			s := &m.stripes[i]
			sl, t := s.rlock()
			entries := len(s.m)
			kind := lockKind(sl.lock)
			hot := sl.hot
			sl.lock.RUnlock(t)
			h.Entries += entries
			sh := StripeHeat{Index: i, Entries: entries, LockKind: kind, Hot: hot}
			if words != nil {
				sh.Window = uint32(words[i] >> 32)
				sh.SampledHits = uint32(words[i])
			}
			heat = append(heat, sh)
		}
		return heat
	}

	if m.ad != nil {
		h.Top = report(order[:top])
		return h
	}
	// No traffic counters: rank by where the data lives, which means
	// reading every stripe's entry count before cutting to top.
	heat := report(order)
	sort.Slice(heat, func(x, y int) bool {
		if heat[x].Entries != heat[y].Entries {
			return heat[x].Entries > heat[y].Entries
		}
		return heat[x].Index < heat[y].Index
	})
	h.Top = heat[:top]
	return h
}
