// Package rwmap provides a striped concurrent map — the serving-tier
// layer over the rwlock package's lock grid.
//
// A Map hashes each key (hash/maphash.Comparable, per-Map seed) to one
// of a power-of-two number of stripes; each stripe is an independent
// Go map guarded by its own rwlock.RWLock.  Reads on different
// stripes never touch the same lock, so a read-mostly key space
// scales with the stripe count, and a hot key's writer storms stay
// confined to that key's stripe.  The per-stripe locks come from a
// caller-supplied factory (WithLockFactory) — any lock in the rwlock
// registry works — and default to rwlock.SlimBravo on the package's
// shared reader table, the 16-byte-per-instance build that makes
// 10^5–10^6-stripe grids affordable (see rwlock.WithSharedReaderTable
// for the trade).
//
// Writes go through the lock's closure write path (rwlock.Write) when
// the stripe lock flat-combines, so such a stripe batches its
// mutations exactly as the PR 5 write path does; on every other lock
// the token path is the same semantics with zero allocations.  Update
// exposes read-modify-write without a Get/Put race, and GetOrCompute
// fills a missing entry under a single write acquisition.
//
// WithAdaptiveLocks / WithHotSet turn on contention-driven lock
// heterogeneity: every stripe starts on a 16-byte Slim lock, a
// sampled per-stripe traffic counter finds the hot set, and the Map
// promotes just those stripes to full Bravo/Epoch wrappers on the
// shared reader arena (demoting them again when they cool).  See
// adaptive.go for the machinery and the swap protocol.
//
// For introspection, Map.Stats reports grid-wide counters (entry
// count, promotion/demotion traffic, hot-set high-water mark) and
// Map.Heatmap returns a per-stripe load snapshot — entries, sampled
// traffic, and promotion state per stripe — which is how a Slim-lock
// grid is observed, since Slim locks sit outside the rwlock stats
// seam.  The rwstats package serves both over expvar, Prometheus
// text format, and JSON.
//
// The zero Map is not ready; construct with New.  All methods are
// safe for concurrent use.  Range takes no global snapshot: it locks
// one stripe at a time, so it observes a state in which each stripe
// is internally consistent but cross-stripe mutations concurrent with
// the walk may be partially visible — the usual striped-map contract.
package rwmap

import (
	"hash/maphash"
	"math/bits"
	"sync/atomic"

	"rwsync/rwlock"
)

// maxStripes caps the grid at 2^20: past a million stripes the
// per-stripe Go map headers dominate any lock-footprint win, and the
// mask arithmetic below assumes the count fits comfortably in 32 bits.
const maxStripes = 1 << 20

// config collects the construction options; generic New cannot hang
// methods off a generic options type, so options are plain funcs over
// this struct.
type config struct {
	stripes  int
	factory  func() rwlock.RWLock
	adaptive AdaptiveConfig
}

// Option configures New.
type Option func(*config)

// WithStripes sets the stripe count.  The count is clamped to
// [1, 1<<20] and rounded up to a power of two (the stripe index is a
// mask of the key hash, so a non-power-of-two count would bias the
// distribution).
func WithStripes(n int) Option {
	return func(c *config) { c.stripes = n }
}

// WithLockFactory sets the constructor used for every stripe's lock.
// The factory runs once per stripe at New time; at large stripe
// counts prefer constructors whose per-instance footprint is small
// (rwlock.NewSlimBravo, rwlock.NewSlimEpoch — 16 bytes each on a
// shared reader table) over the full wrappers (kilobytes each).
// Incompatible with WithAdaptiveLocks, which owns the stripe locks.
func WithLockFactory(f func() rwlock.RWLock) Option {
	if f == nil {
		panic("rwmap: WithLockFactory needs a non-nil factory")
	}
	return func(c *config) { c.factory = f }
}

// stripeLock bundles one published lock state: the lock, its closure
// write path when (and only when) the lock flat-combines, and the
// adaptive bookkeeping.  The bundle is published through an atomic
// pointer so a promotion swaps lock and write-path resolve together.
type stripeLock struct {
	lock rwlock.RWLock
	fw   rwlock.FuncWriter // non-nil only when lock combines closure writes
	hot  bool              // promoted full wrapper?
	cold *stripeLock       // promotion stashes the Slim bundle here for demotion
}

// newStripeLock resolves l's closure write path once.  Only a
// flat-combining lock gets fw: every lock in the registry implements
// FuncWriter, but on a non-combining lock Write is Lock/cs/Unlock
// with the closure forced to the heap, while the token path is the
// same semantics allocation-free.
func newStripeLock(l rwlock.RWLock) *stripeLock {
	sl := &stripeLock{lock: l}
	if _, combines := rwlock.CombinerStatsOf(l); combines {
		sl.fw, _ = l.(rwlock.FuncWriter)
	}
	return sl
}

// stripe is one shard: the published lock bundle and the shard map.
// All lock access goes through cur — the indirection the adaptive
// promotion path swaps through; a non-adaptive Map stores cur once at
// construction and never again.
type stripe[K comparable, V any] struct {
	cur atomic.Pointer[stripeLock]
	m   map[K]V
}

// rlock acquires s's current lock in read mode and revalidates the
// published bundle after acquiring: a promotion that swapped the lock
// between the load and the acquire would leave this caller holding a
// lock no writer consults any more, so it backs out and retries on
// the newly published one.  The swap publishes only while holding the
// previous lock's write mode (see swap), so holding the lock that is
// current after acquisition is mutual exclusion.  On a non-adaptive
// Map the pointer never changes and the loop is one iteration.
func (s *stripe[K, V]) rlock() (*stripeLock, rwlock.RToken) {
	for {
		sl := s.cur.Load()
		t := sl.lock.RLock()
		if s.cur.Load() == sl {
			return sl, t
		}
		sl.lock.RUnlock(t)
	}
}

// wlock is rlock's write-mode twin.
func (s *stripe[K, V]) wlock() (*stripeLock, rwlock.WToken) {
	for {
		sl := s.cur.Load()
		t := sl.lock.Lock()
		if s.cur.Load() == sl {
			return sl, t
		}
		sl.lock.Unlock(t)
	}
}

// swap publishes nl as s's lock bundle, riding old's closure write
// path where the lock has one.  By the time the write passage is
// granted every holder that validated old has left; publishing inside
// the passage means any later acquirer of old fails rlock/wlock
// revalidation and retries on nl.  Callers serialize swaps per stripe
// (the adaptive maintainer holds its mutex), so old is known current.
func (s *stripe[K, V]) swap(old, nl *stripeLock) {
	if fw, ok := old.lock.(rwlock.FuncWriter); ok {
		fw.Write(func() { s.cur.Store(nl) })
		return
	}
	t := old.lock.Lock()
	s.cur.Store(nl)
	old.lock.Unlock(t)
}

// apply runs one read-modify-write against the shard map; the caller
// holds the stripe's write mode.
func (s *stripe[K, V]) apply(k K, f func(v V, ok bool) (V, bool)) {
	v, ok := s.m[k]
	if nv, keep := f(v, ok); keep {
		s.m[k] = nv
	} else if ok {
		delete(s.m, k)
	}
}

// Map is a striped concurrent map.  See the package comment for the
// consistency contract.
type Map[K comparable, V any] struct {
	seed    maphash.Seed
	mask    uint64
	stripes []stripe[K, V]
	ad      *adaptive // nil unless WithAdaptiveLocks/WithHotSet
}

// defaultStripes is the stripe count when WithStripes is not given:
// enough to spread a typical serving key space without making the
// empty Map's footprint surprising.
const defaultStripes = 64

// New constructs a Map.  The default configuration is 64 stripes,
// each guarded by a rwlock.SlimBravo on the package-default shared
// reader table.
func New[K comparable, V any](opts ...Option) *Map[K, V] {
	cfg := config{stripes: defaultStripes}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.stripes
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	// Round up to a power of two.
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	factory := cfg.factory
	if cfg.adaptive.HotSet > 0 {
		if factory != nil {
			panic("rwmap: WithLockFactory and WithAdaptiveLocks are mutually exclusive (adaptive mode owns the stripe locks)")
		}
		factory = cfg.adaptive.coldFactory()
	} else if factory == nil {
		factory = func() rwlock.RWLock { return rwlock.NewSlimBravo() }
	}
	m := &Map[K, V]{
		seed:    maphash.MakeSeed(),
		mask:    uint64(n - 1),
		stripes: make([]stripe[K, V], n),
	}
	// One slab for the cold bundles: at 2^20 stripes a per-bundle
	// allocation would cost an object header per stripe for state that
	// never changes size.
	slab := make([]stripeLock, n)
	for i := range m.stripes {
		s := &m.stripes[i]
		sl := &slab[i]
		*sl = *newStripeLock(factory())
		s.cur.Store(sl)
		s.m = make(map[K]V)
	}
	if cfg.adaptive.HotSet > 0 {
		m.ad = newAdaptive(cfg.adaptive, n)
	}
	return m
}

// Stripes returns the stripe count (a power of two in [1, 1<<20]).
func (m *Map[K, V]) Stripes() int { return len(m.stripes) }

// indexOf returns the key's stripe index.
func (m *Map[K, V]) indexOf(k K) uint64 {
	return maphash.Comparable(m.seed, k) & m.mask
}

// stripeOf returns the key's shard.
func (m *Map[K, V]) stripeOf(k K) *stripe[K, V] {
	return &m.stripes[m.indexOf(k)]
}

// LockOf returns the lock currently guarding k's stripe — the seam
// measurement harnesses use to wait on or inspect the exact lock a
// hot key contends on.  Mutating the map through this lock directly
// (instead of the Map methods) is the caller's own consistency
// problem; on an adaptive Map the returned lock can additionally be
// demoted or promoted away at any moment, so treat it as a sample.
func (m *Map[K, V]) LockOf(k K) rwlock.RWLock {
	return m.stripeOf(k).cur.Load().lock
}

// Get returns the value stored for k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	i := m.indexOf(k)
	s := &m.stripes[i]
	sl, t := s.rlock()
	v, ok := s.m[k]
	sl.lock.RUnlock(t)
	if m.ad != nil {
		m.sample(i)
	}
	return v, ok
}

// Read runs f under k's stripe read lock with the stored value (and
// whether it was present).  Unlike Get it lets the caller inspect a
// pointer-valued V in place with the guarantee no Update is mutating
// it concurrently.  f must not call back into the same Map.
func (m *Map[K, V]) Read(k K, f func(v V, ok bool)) {
	i := m.indexOf(k)
	s := &m.stripes[i]
	sl, t := s.rlock()
	v, ok := s.m[k]
	f(v, ok)
	sl.lock.RUnlock(t)
	if m.ad != nil {
		m.sample(i)
	}
}

// Put stores v for k.
func (m *Map[K, V]) Put(k K, v V) {
	i := m.indexOf(k)
	s := &m.stripes[i]
	if sl := s.cur.Load(); sl.fw != nil {
		// Combining stripe lock (non-adaptive only — adaptive builds
		// never combine, so no revalidation is needed on this branch):
		// ship the mutation through the closure path it batches on.
		sl.fw.Write(func() { s.m[k] = v })
	} else {
		sl, t := s.wlock()
		s.m[k] = v
		sl.lock.Unlock(t)
	}
	if m.ad != nil {
		m.sample(i)
	}
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	i := m.indexOf(k)
	s := &m.stripes[i]
	if sl := s.cur.Load(); sl.fw != nil {
		sl.fw.Write(func() { delete(s.m, k) })
	} else {
		sl, t := s.wlock()
		delete(s.m, k)
		sl.lock.Unlock(t)
	}
	if m.ad != nil {
		m.sample(i)
	}
}

// Update atomically read-modify-writes k's entry: f receives the
// current value (and whether it exists) and returns the new value and
// whether to keep it (false deletes the entry).  f runs inside the
// stripe's write critical section — on a flat-combining stripe lock,
// possibly on the combiner's goroutine, batched with other stripe
// writes — so it must be short, must not block, and must not call
// back into the Map.
func (m *Map[K, V]) Update(k K, f func(v V, ok bool) (V, bool)) {
	i := m.indexOf(k)
	s := &m.stripes[i]
	if sl := s.cur.Load(); sl.fw != nil {
		sl.fw.Write(func() { s.apply(k, f) })
	} else {
		sl, t := s.wlock()
		s.apply(k, f)
		sl.lock.Unlock(t)
	}
	if m.ad != nil {
		m.sample(i)
	}
}

// GetOrCompute returns the value for k, computing and storing it on a
// miss.  The hit path is one read acquisition.  A miss upgrades to
// one write acquisition of k's stripe, re-checks (another caller may
// have won the upgrade race), and only then runs fill — so of any set
// of concurrent callers for a missing k, exactly one runs fill and
// the rest return its value: the single-flight guarantee the separate
// Get-miss-then-Put sequence cannot give (its lost-update window
// between the two acquisitions runs every racer's fill and keeps an
// arbitrary one).  loaded reports whether the value was already
// present.  fill runs inside the stripe's write critical section: it
// must be short, must not block, and must not call back into the Map.
func (m *Map[K, V]) GetOrCompute(k K, fill func() V) (v V, loaded bool) {
	i := m.indexOf(k)
	s := &m.stripes[i]
	sl, t := s.rlock()
	v, loaded = s.m[k]
	sl.lock.RUnlock(t)
	if !loaded {
		wl, wt := s.wlock()
		if v, loaded = s.m[k]; !loaded {
			v = fill()
			s.m[k] = v
		}
		wl.lock.Unlock(wt)
	}
	if m.ad != nil {
		m.sample(i)
	}
	return v, loaded
}

// Len returns the total entry count, summed stripe by stripe under
// each stripe's read lock (consistent per stripe, not globally).
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		sl, t := s.rlock()
		n += len(s.m)
		sl.lock.RUnlock(t)
	}
	return n
}

// Range calls f for every entry until f returns false.  Each stripe
// is walked under its read lock; the walk holds at most one stripe
// lock at a time (see the package comment for the cross-stripe
// consistency contract).  f must not mutate the Map — the stripe it
// would write is read-locked by its own caller.
func (m *Map[K, V]) Range(f func(k K, v V) bool) {
	for i := range m.stripes {
		s := &m.stripes[i]
		sl, t := s.rlock()
		for k, v := range s.m {
			if !f(k, v) {
				sl.lock.RUnlock(t)
				return
			}
		}
		sl.lock.RUnlock(t)
	}
}
