// Package rwmap provides a striped concurrent map — the serving-tier
// layer over the rwlock package's lock grid.
//
// A Map hashes each key (hash/maphash.Comparable, per-Map seed) to one
// of a power-of-two number of stripes; each stripe is an independent
// Go map guarded by its own rwlock.RWLock.  Reads on different
// stripes never touch the same lock, so a read-mostly key space
// scales with the stripe count, and a hot key's writer storms stay
// confined to that key's stripe.  The per-stripe locks come from a
// caller-supplied factory (WithLockFactory) — any lock in the rwlock
// registry works — and default to rwlock.SlimBravo on the package's
// shared reader table, the 16-byte-per-instance build that makes
// 10^5–10^6-stripe grids affordable (see rwlock.WithSharedReaderTable
// for the trade).
//
// Writes go through the lock's closure write path (rwlock.Write), so
// a stripe built over a flat-combining lock batches its mutations
// exactly as the PR 5 write path does; Update exposes that path for
// read-modify-write without a Get/Put race.
//
// The zero Map is not ready; construct with New.  All methods are
// safe for concurrent use.  Range takes no global snapshot: it locks
// one stripe at a time, so it observes a state in which each stripe
// is internally consistent but cross-stripe mutations concurrent with
// the walk may be partially visible — the usual striped-map contract.
package rwmap

import (
	"hash/maphash"
	"math/bits"

	"rwsync/rwlock"
)

// maxStripes caps the grid at 2^20: past a million stripes the
// per-stripe Go map headers dominate any lock-footprint win, and the
// mask arithmetic below assumes the count fits comfortably in 32 bits.
const maxStripes = 1 << 20

// config collects the construction options; generic New cannot hang
// methods off a generic options type, so options are plain funcs over
// this struct.
type config struct {
	stripes int
	factory func() rwlock.RWLock
}

// Option configures New.
type Option func(*config)

// WithStripes sets the stripe count.  The count is clamped to
// [1, 1<<20] and rounded up to a power of two (the stripe index is a
// mask of the key hash, so a non-power-of-two count would bias the
// distribution).
func WithStripes(n int) Option {
	return func(c *config) { c.stripes = n }
}

// WithLockFactory sets the constructor used for every stripe's lock.
// The factory runs once per stripe at New time; at large stripe
// counts prefer constructors whose per-instance footprint is small
// (rwlock.NewSlimBravo, rwlock.NewSlimEpoch — 16 bytes each on a
// shared reader table) over the full wrappers (kilobytes each).
func WithLockFactory(f func() rwlock.RWLock) Option {
	if f == nil {
		panic("rwmap: WithLockFactory needs a non-nil factory")
	}
	return func(c *config) { c.factory = f }
}

// stripe is one shard: its lock, the lock's closure write path
// (resolved once — every stripe write goes through it, so the
// per-write type assertion is hoisted here), and the shard map.
type stripe[K comparable, V any] struct {
	lock rwlock.RWLock
	fw   rwlock.FuncWriter // nil when lock has no closure path
	m    map[K]V
}

// Map is a striped concurrent map.  See the package comment for the
// consistency contract.
type Map[K comparable, V any] struct {
	seed    maphash.Seed
	mask    uint64
	stripes []stripe[K, V]
}

// defaultStripes is the stripe count when WithStripes is not given:
// enough to spread a typical serving key space without making the
// empty Map's footprint surprising.
const defaultStripes = 64

// New constructs a Map.  The default configuration is 64 stripes,
// each guarded by a rwlock.SlimBravo on the package-default shared
// reader table.
func New[K comparable, V any](opts ...Option) *Map[K, V] {
	cfg := config{stripes: defaultStripes}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.stripes
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	// Round up to a power of two.
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	factory := cfg.factory
	if factory == nil {
		factory = func() rwlock.RWLock { return rwlock.NewSlimBravo() }
	}
	m := &Map[K, V]{
		seed:    maphash.MakeSeed(),
		mask:    uint64(n - 1),
		stripes: make([]stripe[K, V], n),
	}
	for i := range m.stripes {
		s := &m.stripes[i]
		s.lock = factory()
		s.fw, _ = s.lock.(rwlock.FuncWriter)
		s.m = make(map[K]V)
	}
	return m
}

// Stripes returns the stripe count (a power of two in [1, 1<<20]).
func (m *Map[K, V]) Stripes() int { return len(m.stripes) }

// stripeOf returns the key's shard.
func (m *Map[K, V]) stripeOf(k K) *stripe[K, V] {
	return &m.stripes[maphash.Comparable(m.seed, k)&m.mask]
}

// LockOf returns the lock guarding k's stripe — the seam measurement
// harnesses use to wait on or inspect the exact lock a hot key
// contends on.  Mutating the map through this lock directly (instead
// of the Map methods) is the caller's own consistency problem.
func (m *Map[K, V]) LockOf(k K) rwlock.RWLock {
	return m.stripeOf(k).lock
}

// Get returns the value stored for k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.stripeOf(k)
	t := s.lock.RLock()
	v, ok := s.m[k]
	s.lock.RUnlock(t)
	return v, ok
}

// Read runs f under k's stripe read lock with the stored value (and
// whether it was present).  Unlike Get it lets the caller inspect a
// pointer-valued V in place with the guarantee no Update is mutating
// it concurrently.  f must not call back into the same Map.
func (m *Map[K, V]) Read(k K, f func(v V, ok bool)) {
	s := m.stripeOf(k)
	t := s.lock.RLock()
	v, ok := s.m[k]
	f(v, ok)
	s.lock.RUnlock(t)
}

// write runs cs under s's write lock through the closure path when
// the lock has one (the path flat-combining locks batch on).
func (s *stripe[K, V]) write(cs func()) {
	if s.fw != nil {
		s.fw.Write(cs)
		return
	}
	t := s.lock.Lock()
	cs()
	s.lock.Unlock(t)
}

// Put stores v for k.
func (m *Map[K, V]) Put(k K, v V) {
	s := m.stripeOf(k)
	s.write(func() { s.m[k] = v })
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	s := m.stripeOf(k)
	s.write(func() { delete(s.m, k) })
}

// Update atomically read-modify-writes k's entry: f receives the
// current value (and whether it exists) and returns the new value and
// whether to keep it (false deletes the entry).  f runs inside the
// stripe's write critical section — on a flat-combining stripe lock,
// possibly on the combiner's goroutine, batched with other stripe
// writes — so it must be short, must not block, and must not call
// back into the Map.
func (m *Map[K, V]) Update(k K, f func(v V, ok bool) (V, bool)) {
	s := m.stripeOf(k)
	s.write(func() {
		v, ok := s.m[k]
		if nv, keep := f(v, ok); keep {
			s.m[k] = nv
		} else if ok {
			delete(s.m, k)
		}
	})
}

// Len returns the total entry count, summed stripe by stripe under
// each stripe's read lock (consistent per stripe, not globally).
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		t := s.lock.RLock()
		n += len(s.m)
		s.lock.RUnlock(t)
	}
	return n
}

// Range calls f for every entry until f returns false.  Each stripe
// is walked under its read lock; the walk holds at most one stripe
// lock at a time (see the package comment for the cross-stripe
// consistency contract).  f must not mutate the Map — the stripe it
// would write is read-locked by its own caller.
func (m *Map[K, V]) Range(f func(k K, v V) bool) {
	for i := range m.stripes {
		s := &m.stripes[i]
		t := s.lock.RLock()
		for k, v := range s.m {
			if !f(k, v) {
				s.lock.RUnlock(t)
				return
			}
		}
		s.lock.RUnlock(t)
	}
}
