package rwmap

import (
	"fmt"
	"testing"

	"rwsync/rwlock"
)

// TestHeatmapAdaptive drives single-threaded exact-sampled traffic at
// one key and checks the heatmap ranks its stripe first, reports the
// promoted lock kind, and carries coherent sampled counts.
func TestHeatmapAdaptive(t *testing.T) {
	m := New[string, int](
		WithStripes(16),
		WithAdaptiveLocks(AdaptiveConfig{HotSet: 2, SampleEvery: 1, PromoteAt: 8}),
	)
	for i := 0; i < 64; i++ {
		m.Put("hot", i)
	}
	st := m.Stats()
	if st.HotSetSize != 1 {
		t.Fatalf("HotSetSize = %d after a hot-key burst, want 1", st.HotSetSize)
	}
	hotStripe := st.Hot[0]

	h := m.Heatmap(4)
	if !h.Adaptive {
		t.Fatal("Adaptive = false on an adaptive Map")
	}
	if h.Stripes != 16 {
		t.Fatalf("Stripes = %d, want 16", h.Stripes)
	}
	if len(h.Top) != 4 {
		t.Fatalf("len(Top) = %d, want 4", len(h.Top))
	}
	top := h.Top[0]
	if top.Index != hotStripe {
		t.Errorf("hottest stripe %d, want promoted stripe %d", top.Index, hotStripe)
	}
	if !top.Hot {
		t.Error("hottest stripe not marked Hot")
	}
	if top.LockKind != "Bravo" {
		t.Errorf("hottest LockKind = %q, want Bravo (promoted)", top.LockKind)
	}
	if top.SampledHits == 0 {
		t.Error("hottest stripe has zero sampled hits")
	}
	if top.Entries != 1 {
		t.Errorf("hottest stripe Entries = %d, want 1", top.Entries)
	}
	for _, sh := range h.Top[1:] {
		if sh.Hot {
			t.Errorf("stripe %d marked Hot; only %d promoted", sh.Index, hotStripe)
		}
		if sh.LockKind != "SlimBravo" {
			t.Errorf("cold stripe %d LockKind = %q, want SlimBravo", sh.Index, sh.LockKind)
		}
	}
}

// TestHeatmapNonAdaptive checks the entry-count ranking fallback and
// the kind naming for a WithLockFactory grid.
func TestHeatmapNonAdaptive(t *testing.T) {
	m := New[int, int](
		WithStripes(8),
		WithLockFactory(func() rwlock.RWLock { return rwlock.NewMWSF() }),
	)
	for i := 0; i < 200; i++ {
		m.Put(i, i)
	}
	h := m.Heatmap(0) // all stripes
	if h.Adaptive {
		t.Fatal("Adaptive = true on a plain Map")
	}
	if len(h.Top) != 8 {
		t.Fatalf("len(Top) = %d, want all 8 stripes", len(h.Top))
	}
	if h.Entries != m.Len() {
		t.Errorf("Entries = %d, want Len() = %d", h.Entries, m.Len())
	}
	for i := 1; i < len(h.Top); i++ {
		if h.Top[i].Entries > h.Top[i-1].Entries {
			t.Errorf("Top not sorted by entries at %d: %d > %d", i, h.Top[i].Entries, h.Top[i-1].Entries)
		}
	}
	for _, sh := range h.Top {
		if sh.LockKind != "MWSF" {
			t.Errorf("stripe %d LockKind = %q, want MWSF", sh.Index, sh.LockKind)
		}
		if sh.Hot || sh.SampledHits != 0 || sh.Window != 0 {
			t.Errorf("stripe %d has adaptive fields set on a plain Map: %+v", sh.Index, sh)
		}
	}
}

// TestHeatmapConcurrent races Heatmap against live traffic; run under
// -race this pins that the snapshot takes the stripe locks it needs.
func TestHeatmapConcurrent(t *testing.T) {
	m := New[string, int](WithStripes(8), WithHotSet(2))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("k%d", i%32)
			m.Put(k, i)
			m.Get(k)
		}
	}()
	for i := 0; i < 50; i++ {
		h := m.Heatmap(3)
		if len(h.Top) != 3 {
			t.Fatalf("len(Top) = %d, want 3", len(h.Top))
		}
	}
	close(stop)
	<-done
}
