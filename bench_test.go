package rwsync

// This file regenerates every experiment of DESIGN.md's index as a
// `go test -bench` target.  The RMR experiments (E1-E4) run on the
// cache-coherent simulator and report exact remote-memory-reference
// counts via custom benchmark metrics (rmr-*/pass); wall-clock ns/op
// is not the point there.  The native experiments (E7, E8) measure
// real goroutines over sync/atomic.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE1 -benchtime=10x

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rwsync/internal/ccsim"
	"rwsync/internal/core"
	"rwsync/internal/harness"
	"rwsync/internal/stats"
	"rwsync/internal/workload"
	"rwsync/rwlock"
)

// reportRMR runs one simulator configuration per benchmark iteration
// and reports per-passage RMR statistics as benchmark metrics.
func reportRMR(b *testing.B, build func() *core.System, attempts int) {
	b.Helper()
	var readerMax, writerMax int64
	var readerSum, writerSum, readerN, writerN int64
	for i := 0; i < b.N; i++ {
		sys := build()
		r, err := sys.NewRunner(attempts)
		if err != nil {
			b.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(i)+1), 1<<26); err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Stats {
			if s.Reader {
				readerSum += s.RMR
				readerN++
				if s.RMR > readerMax {
					readerMax = s.RMR
				}
			} else {
				writerSum += s.RMR
				writerN++
				if s.RMR > writerMax {
					writerMax = s.RMR
				}
			}
		}
	}
	if readerN > 0 {
		b.ReportMetric(float64(readerSum)/float64(readerN), "rmr-reader-mean/pass")
		b.ReportMetric(float64(readerMax), "rmr-reader-max/pass")
	}
	if writerN > 0 {
		b.ReportMetric(float64(writerSum)/float64(writerN), "rmr-writer-mean/pass")
		b.ReportMetric(float64(writerMax), "rmr-writer-max/pass")
	}
}

// BenchmarkE1_RMR_SWWP validates Theorem 1: Figure 1's RMR/passage is
// constant in the number of readers (compare the rmr-* metrics across
// sub-benchmarks — they must stay flat).
func BenchmarkE1_RMR_SWWP(b *testing.B) {
	for _, readers := range []int{1, 4, 16, 64} {
		b.Run(benchName("readers", readers), func(b *testing.B) {
			reportRMR(b, func() *core.System { return core.NewFig1System(readers) }, 8)
		})
	}
}

// BenchmarkE2_RMR_SWRP validates Theorem 2 for Figure 2.
func BenchmarkE2_RMR_SWRP(b *testing.B) {
	for _, readers := range []int{1, 4, 16, 64} {
		b.Run(benchName("readers", readers), func(b *testing.B) {
			reportRMR(b, func() *core.System { return core.NewFig2System(readers) }, 8)
		})
	}
}

// BenchmarkE3_RMR_MultiWriter validates Theorems 3-5: the multi-writer
// constructions keep constant RMR/passage.
func BenchmarkE3_RMR_MultiWriter(b *testing.B) {
	points := []struct{ w, r int }{{2, 8}, {4, 32}, {8, 64}}
	for name, build := range map[string]func(w, r int) *core.System{
		"MWSF": core.NewMWSFSystem,
		"MWRP": core.NewMWRPSystem,
		"MWWP": core.NewMWWPSystem,
	} {
		for _, pt := range points {
			pt := pt
			build := build
			b.Run(name+"/w="+itoa(pt.w)+"/r="+itoa(pt.r), func(b *testing.B) {
				reportRMR(b, func() *core.System { return build(pt.w, pt.r) }, 8)
			})
		}
	}
}

// BenchmarkE4_RMR_Baselines shows the contrast the paper closes: the
// centralized lock's rmr-* metrics grow with the process count and the
// tournament lock's grow with log(n), while E1-E3 stay flat.
func BenchmarkE4_RMR_Baselines(b *testing.B) {
	points := []struct{ w, r int }{{2, 8}, {4, 32}, {8, 64}}
	for _, pt := range points {
		pt := pt
		b.Run("Centralized/w="+itoa(pt.w)+"/r="+itoa(pt.r), func(b *testing.B) {
			reportRMR(b, func() *core.System { return core.NewCentralizedSystem(pt.w, pt.r) }, 8)
		})
		b.Run("PhaseFair/w="+itoa(pt.w)+"/r="+itoa(pt.r), func(b *testing.B) {
			reportRMR(b, func() *core.System { return core.NewPFTicketSystem(pt.w, pt.r) }, 8)
		})
		b.Run("TaskFair/w="+itoa(pt.w)+"/r="+itoa(pt.r), func(b *testing.B) {
			reportRMR(b, func() *core.System { return core.NewTaskFairSystem(pt.w, pt.r) }, 8)
		})
		b.Run("Tournament/n="+itoa(pt.w+pt.r), func(b *testing.B) {
			reportRMR(b, func() *core.System { return core.NewTournamentSystem(pt.w + pt.r) }, 8)
		})
	}
}

// benchLocks builds the native locks for E7/E8.
func benchLocks() map[string]rwlock.RWLock {
	out := make(map[string]rwlock.RWLock)
	for name, f := range harness.NativeLocks() {
		out[name] = f()
	}
	return out
}

// BenchmarkE7_Throughput measures native mixed-workload throughput per
// lock at several read fractions; ns/op is the per-operation cost.
func BenchmarkE7_Throughput(b *testing.B) {
	for _, frac := range []int{50, 90, 99, 100} {
		frac := frac
		for name, l := range benchLocks() {
			l := l
			b.Run(name+"/read="+itoa(frac), func(b *testing.B) {
				var shared atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(rand.Int63()))
					for pb.Next() {
						if rng.Intn(100) < frac {
							tok := l.RLock()
							_ = shared.Load()
							l.RUnlock(tok)
						} else {
							tok := l.Lock()
							shared.Add(1)
							l.Unlock(tok)
						}
					}
				})
			})
		}
	}
}

// BenchmarkE8_WriterLatencyUnderReaderStorm times write passages while
// background readers hammer the lock: ns/op is the writer's
// acquisition+release latency under storm.  Writer-priority (MWWP)
// should degrade the least as the storm grows.  Storm readers yield
// between operations; without the yield, a reader-priority lock lets
// non-stop readers starve the writer indefinitely on a single core —
// correct per RP1, but then there is no latency to measure.
func BenchmarkE8_WriterLatencyUnderReaderStorm(b *testing.B) {
	const readers = 4
	for name, l := range benchLocks() {
		l := l
		b.Run(name, func(b *testing.B) {
			var stop atomic.Bool
			done := make(chan struct{}, readers)
			for i := 0; i < readers; i++ {
				go func() {
					defer func() { done <- struct{}{} }()
					for !stop.Load() {
						tok := l.RLock()
						l.RUnlock(tok)
						runtime.Gosched()
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.Lock()
				l.Unlock(tok)
			}
			b.StopTimer()
			stop.Store(true)
			for i := 0; i < readers; i++ {
				<-done
			}
		})
	}
}

// BenchmarkE8_ReaderLatencyUnderWriterStorm is the mirror experiment:
// reader passages while background writers hammer.  Reader-priority
// (MWRP) should degrade the least.
func BenchmarkE8_ReaderLatencyUnderWriterStorm(b *testing.B) {
	const writers = 2
	for name, l := range benchLocks() {
		l := l
		b.Run(name, func(b *testing.B) {
			var stop atomic.Bool
			done := make(chan struct{}, writers)
			for i := 0; i < writers; i++ {
				go func() {
					defer func() { done <- struct{}{} }()
					for !stop.Load() {
						tok := l.Lock()
						l.Unlock(tok)
						runtime.Gosched()
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
			}
			b.StopTimer()
			stop.Store(true)
			for i := 0; i < writers; i++ {
				<-done
			}
		})
	}
}

// BenchmarkReadHeavy is the reader-fast-path comparison grid
// (experiment E11): read-heavy mixes (90/99/100% reads) at doubling
// goroutine counts up to max(4, NumCPU), comparing each constant-RMR
// lock against its BRAVO-wrapped and Epoch-wrapped variants and
// sync.RWMutex.  The headline number is the reads/s metric: BRAVO's
// sharded fast path must beat the bare lock's single fetch&add word
// once several goroutines read at once, and the epoch fast path —
// zero shared-word RMWs per read passage — must beat BRAVO at the
// 99-100% mixes where the read path is everything.
//
//	go test -bench ReadHeavy -benchtime 100000x
func BenchmarkReadHeavy(b *testing.B) {
	maxG := runtime.NumCPU()
	if maxG < 4 {
		maxG = 4 // the grid must exercise real reader concurrency even on small CI boxes
	}
	var gs []int
	for g := 1; g <= maxG; g *= 2 {
		gs = append(gs, g)
	}
	if gs[len(gs)-1] != maxG {
		gs = append(gs, maxG)
	}
	names := []string{"MWSF", "Bravo(MWSF)", "MWSF/epoch",
		"MWRP", "Bravo(MWRP)", "MWRP/epoch",
		"MWWP", "Bravo(MWWP)", "MWWP/epoch", "sync.RWMutex"}
	builders := harness.NativeLocks()
	for _, frac := range []int{90, 99, 100} {
		for _, g := range gs {
			for _, name := range names {
				name := name
				g := g
				frac := frac
				b.Run(name+"/read="+itoa(frac)+"/g="+itoa(g), func(b *testing.B) {
					readHeavy(b, builders[name](), g, frac)
				})
			}
		}
	}
}

// BenchmarkOversubscribed is the waiting-layer experiment (E12): 64
// workers on GOMAXPROCS=2 — goroutines 32× the processors, the regime
// real services run in — comparing each constant-RMR lock's SpinYield
// build against its SpinThenPark ("/park") build, with sync.RWMutex
// (whose waiters always park in the runtime) as the reference.  The
// headline is ops/s: spinning waiters burn whole scheduler quanta the
// lock holder needs, so /park must win here, and by a wide margin at
// the 90% read mix where writers constantly close the gates.
//
//	GOMAXPROCS is pinned inside each sub-benchmark; run with e.g.
//	go test -bench Oversubscribed -benchtime 100000x
func BenchmarkOversubscribed(b *testing.B) {
	const workers = 64
	builders := harness.NativeLocks()
	for _, frac := range []int{90, 99} {
		frac := frac
		for _, name := range harness.OversubLockNames() {
			name := name
			b.Run(name+"/read="+itoa(frac)+"/g="+itoa(workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(2)
				defer runtime.GOMAXPROCS(prev)
				oversubBench(b, builders[name](), workers, frac)
			})
		}
	}
}

// oversubBench is readHeavy with the workload package's critical-
// section and think-time shape (CSWork/ThinkWork 32, as the E7/E12
// sweeps use): under oversubscription a pure lock ping-pong measures
// scheduler luck — whichever waiter happens to hold a P wins the next
// pass — while real services hold the lock to DO something, which is
// exactly the time spinning waiters steal from the holder.
func oversubBench(b *testing.B, l rwlock.RWLock, g, frac int) {
	const work = 32
	var shared atomic.Int64
	per := (b.N + g - 1) / g
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var sink int64
			for op := 0; op < per; op++ {
				if rng.Intn(100) < frac {
					tok := l.RLock()
					_ = shared.Load()
					busySpin(work, &sink)
					l.RUnlock(tok)
				} else {
					tok := l.Lock()
					shared.Add(1)
					busySpin(work, &sink)
					l.Unlock(tok)
				}
				busySpin(work, &sink)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(per*g)/s, "ops/s")
	}
}

// busySpin is n iterations of un-optimizable busy work (the workload
// package's spin, inlined so the benchmark has no cross-package call
// in the loop).
func busySpin(n int, sink *int64) {
	s := *sink
	for i := 0; i < n; i++ {
		s += int64(i) ^ s<<1
	}
	*sink = s
}

// readHeavy splits b.N operations across g goroutines, each drawing
// reads with probability frac/100, and reports reads/s and ops/s —
// plus the sampled read-latency p99, measured at the workload
// package's default rate (every 64th op per goroutine into a
// preallocated per-goroutine histogram).  The sampling must be
// invisible in ns/op: two clock reads amortized over 64 ops is well
// under a nanosecond, which is what keeps the acceptance cell
// (Bravo(MWSF), 90% reads, g=4) inside its historical noise band with
// sampling permanently on.
func readHeavy(b *testing.B, l rwlock.RWLock, g, frac int) {
	var shared atomic.Int64
	var reads atomic.Int64
	per := (b.N + g - 1) / g
	hists := make([]*stats.Histogram, g)
	for i := range hists {
		hists[i] = new(stats.Histogram)
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(seed int64, h *stats.Histogram) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := int64(0)
			var t0 time.Time // hoisted: zeroing it per op would cost more than the sampling
			// Phase-offset per goroutine, like workload.Run, so the
			// cache-cold op 0 is not in every goroutine's sample.
			phase := int(seed) % workload.DefaultSampleEvery
			for op := 0; op < per; op++ {
				sample := (op+phase)%workload.DefaultSampleEvery == 0
				if rng.Intn(100) < frac {
					if sample {
						t0 = time.Now()
					}
					tok := l.RLock()
					_ = shared.Load()
					l.RUnlock(tok)
					if sample {
						h.Record(time.Since(t0).Nanoseconds())
					}
					n++
				} else {
					tok := l.Lock()
					shared.Add(1)
					l.Unlock(tok)
				}
			}
			reads.Add(n)
		}(int64(i+1), hists[i])
	}
	wg.Wait()
	b.StopTimer()
	merged := new(stats.Histogram)
	for _, h := range hists {
		merged.Merge(h)
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(reads.Load())/s, "reads/s")
		b.ReportMetric(float64(per*g)/s, "ops/s")
	}
	if merged.N() > 0 {
		b.ReportMetric(float64(merged.Quantile(0.99)), "read-p99-ns")
	}
}

// BenchmarkUncontended measures the raw acquire/release cost of each
// lock with a single goroutine (ablation: the price of the algorithm's
// bookkeeping when nothing contends).
func BenchmarkUncontended(b *testing.B) {
	for name, l := range benchLocks() {
		l := l
		b.Run(name+"/write", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tok := l.Lock()
				l.Unlock(tok)
			}
		})
		b.Run(name+"/read", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for v > 0 {
		n--
		buf[n] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[n:])
}

func benchName(k string, v int) string { return k + "=" + itoa(v) }
