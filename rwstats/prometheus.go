package rwstats

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"rwsync/rwlock"
	"rwsync/rwmap"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled on
// the standard library: the container ships no client library, and
// the format is lines.  Metric families are emitted family-by-family
// — one # HELP / # TYPE header, then every lock's series — which is
// what the format requires and what keeps scrapes diff-stable (the
// registry's name-sorted source order).

// lockMetric is one exported counter/gauge family over LockStatsSnapshot.
type lockMetric struct {
	name string // full metric name, including the _total suffix for counters
	typ  string // "counter" | "gauge"
	help string
	get  func(*rwlock.LockStatsSnapshot) float64
}

var lockMetrics = []lockMetric{
	{"rwsync_lock_read_acquires_total", "counter", "Completed read passages.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.ReadAcquires) }},
	{"rwsync_lock_read_contended_total", "counter", "Read passages that found their gate closed and waited.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.ReadContended) }},
	{"rwsync_lock_write_acquires_total", "counter", "Completed write passages.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.WriteAcquires) }},
	{"rwsync_lock_write_contended_total", "counter", "Write acquisitions that waited at the arbitration layer.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.WriteContended) }},
	{"rwsync_lock_try_sheds_total", "counter", "TryLock/TryRLock attempts that reported busy.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.TrySheds) }},
	{"rwsync_lock_ctx_sheds_total", "counter", "Context-cancelled acquisition attempts.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.CtxSheds) }},
	{"rwsync_lock_revocations_total", "counter", "BRAVO read-bias revocations.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.Revocations) }},
	{"rwsync_lock_re_arms_total", "counter", "BRAVO read-bias re-arms.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.ReArms) }},
	{"rwsync_lock_epoch_advances_total", "counter", "Epoch global advances.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.EpochAdvances) }},
	{"rwsync_lock_grace_waits_total", "counter", "Grace periods waited out by writers.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.GraceWaits) }},
	{"rwsync_lock_queue_depth", "gauge", "Writers currently holding or queued at the arbitration layer.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.QueueDepth) }},
	{"rwsync_lock_queue_depth_max", "gauge", "High-water mark of the arbitration queue depth.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.QueueDepthMax) }},
	{"rwsync_lock_batches_total", "counter", "Flat-combining batches retired.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.Batches) }},
	{"rwsync_lock_batch_max", "gauge", "Largest flat-combining batch retired.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.BatchMax) }},
	{"rwsync_lock_combined_ops_total", "counter", "Closure writes retired through combining batches.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.CombinedOps) }},
	{"rwsync_lock_parks_total", "counter", "Goroutines that parked on an owned waitCell.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.Parks) }},
	{"rwsync_lock_unparks_total", "counter", "Parked goroutines that woke.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.Unparks) }},
	{"rwsync_lock_stalls_total", "counter", "Stall-watchdog firings.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.Stalls) }},
	{"rwsync_lock_retired_versions_total", "counter", "Versions handed to Retire.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.RetiredVersions) }},
	{"rwsync_lock_reclaimed_versions_total", "counter", "Versions swept after their grace period.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.ReclaimedVersions) }},
	{"rwsync_lock_retained_versions_max", "gauge", "High-water count of retired-not-yet-reclaimed versions.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.RetainedVersionsMax) }},
	{"rwsync_lock_retained_bytes_max", "gauge", "High-water bytes of retired-not-yet-reclaimed versions.",
		func(s *rwlock.LockStatsSnapshot) float64 { return float64(s.RetainedBytesMax) }},
}

// labelEscaper escapes a label value per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func writeFamily(w io.Writer, m *lockMetric, rows []struct {
	name string
	st   *rwlock.LockStats
}, snaps []rwlock.LockStatsSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
	for i := range rows {
		fmt.Fprintf(w, "%s{lock=\"%s\"} %g\n", m.name, labelEscaper.Replace(rows[i].name), m.get(&snaps[i]))
	}
}

// writeLatencies emits the sampled wait/hold quantiles as one gauge
// family with class and quantile labels.
func writeLatencies(w io.Writer, rows []struct {
	name string
	st   *rwlock.LockStats
}, snaps []rwlock.LockStatsSnapshot) {
	const name = "rwsync_lock_latency_ns"
	fmt.Fprintf(w, "# HELP %s Sampled acquisition-wait and write-hold latency quantiles, in nanoseconds.\n# TYPE %s gauge\n", name, name)
	for i := range rows {
		lock := labelEscaper.Replace(rows[i].name)
		for _, c := range []struct {
			class string
			sum   rwlock.LatencySummary
		}{
			{"read_wait", snaps[i].ReadWait},
			{"write_wait", snaps[i].WriteWait},
			{"write_hold", snaps[i].WriteHold},
		} {
			if c.sum.Count == 0 {
				continue
			}
			for _, q := range []struct {
				label string
				v     int64
			}{{"0.5", c.sum.P50}, {"0.9", c.sum.P90}, {"0.99", c.sum.P99}, {"1", c.sum.Max}} {
				fmt.Fprintf(w, "%s{lock=\"%s\",class=\"%s\",quantile=\"%s\"} %d\n", name, lock, c.class, q.label, q.v)
			}
		}
	}
}

// writeMaps emits the per-map heatmap: whole-map gauges plus one
// series per reported stripe.
func (r *Registry) writeMaps(w io.Writer, top int) {
	maps := r.mapSources()
	if len(maps) == 0 {
		return
	}
	heats := make([]struct {
		name string
		hm   rwmap.Heatmap
	}, 0, len(maps))
	for _, m := range maps {
		heats = append(heats, struct {
			name string
			hm   rwmap.Heatmap
		}{m.name, m.src.Heatmap(top)})
	}

	fmt.Fprint(w, "# HELP rwsync_map_stripes Stripe count of the map.\n# TYPE rwsync_map_stripes gauge\n")
	for _, h := range heats {
		fmt.Fprintf(w, "rwsync_map_stripes{map=\"%s\"} %d\n", labelEscaper.Replace(h.name), h.hm.Stripes)
	}
	fmt.Fprint(w, "# HELP rwsync_map_reported_entries Entry count summed over the reported stripes.\n# TYPE rwsync_map_reported_entries gauge\n")
	for _, h := range heats {
		fmt.Fprintf(w, "rwsync_map_reported_entries{map=\"%s\"} %d\n", labelEscaper.Replace(h.name), h.hm.Entries)
	}
	fmt.Fprint(w, "# HELP rwsync_map_stripe_entries Entry count of one reported stripe.\n# TYPE rwsync_map_stripe_entries gauge\n")
	for _, h := range heats {
		mn := labelEscaper.Replace(h.name)
		for _, s := range h.hm.Top {
			fmt.Fprintf(w, "rwsync_map_stripe_entries{map=\"%s\",stripe=\"%d\",kind=\"%s\",hot=\"%t\"} %d\n",
				mn, s.Index, labelEscaper.Replace(s.LockKind), s.Hot, s.Entries)
		}
	}
	fmt.Fprint(w, "# HELP rwsync_map_stripe_sampled_hits Sampled in-window traffic of one reported stripe (adaptive maps).\n# TYPE rwsync_map_stripe_sampled_hits gauge\n")
	for _, h := range heats {
		if !h.hm.Adaptive {
			continue
		}
		mn := labelEscaper.Replace(h.name)
		for _, s := range h.hm.Top {
			fmt.Fprintf(w, "rwsync_map_stripe_sampled_hits{map=\"%s\",stripe=\"%d\"} %d\n", mn, s.Index, s.SampledHits)
		}
	}
}

// Prometheus returns the text-exposition handler; mount it wherever
// the scraper looks (conventionally /metrics).  ?top=N bounds the
// per-map stripe series like the JSON handler.
func (r *Registry) Prometheus() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rows := r.lockSources()
		snaps := make([]rwlock.LockStatsSnapshot, len(rows))
		for i := range rows {
			snaps[i] = rows[i].st.Snapshot()
		}
		for i := range lockMetrics {
			writeFamily(w, &lockMetrics[i], rows, snaps)
		}
		writeLatencies(w, rows, snaps)
		top := topOf(req)
		if top <= 0 {
			top = defaultHeatmapTop
		}
		r.writeMaps(w, top)
	})
}
