package rwstats

import (
	"fmt"
	"time"

	"rwsync/rwlock"
)

// The stall watchdog.
//
// A constant-RMR lock cannot deadlock by itself, but a DEPLOYMENT
// can wedge its writers in two observable ways: an epoch writer
// waiting out a grace period that a stuck reader never ends, and an
// arbitration queue that stops draining because the current holder
// never releases.  Both conditions are visible in the LockStats block
// without cooperation from the stuck goroutines — the grace register
// (GraceActiveNS) carries the wall-clock stamp of the in-progress
// grace wait, and queue depth with no write-acquire progress is the
// signature of a held-forever lock — so the watchdog is a pure
// observer: it reads counters on a ticker, fires a callback naming
// the blocking LAYER, and bumps the block's Stalls counter that the
// exporters already serve.  It takes no locks and cannot itself block
// traffic.  No goroutine exists until StartWatchdog.

// StallLayer names the layer the watchdog found blocking.
type StallLayer string

const (
	// StallGrace: a writer has been waiting out an epoch grace period
	// past the threshold — some reader is sitting in (or wedged in) a
	// read passage spanning the epoch advance.
	StallGrace StallLayer = "grace"
	// StallArbitration: writers are queued at the arbitration layer
	// and no write passage has completed for the whole threshold — the
	// current holder is stuck inside its critical section.
	StallArbitration StallLayer = "arbitration"
)

// Stall is one watchdog finding.
type Stall struct {
	Lock     string        // the registry name of the stalled lock
	Layer    StallLayer    // which layer is blocking
	Duration time.Duration // how long the condition has held when detected
}

// WatchdogConfig tunes StartWatchdog.
type WatchdogConfig struct {
	// Threshold is how long a condition must persist before the
	// watchdog fires.  Required.
	Threshold time.Duration
	// Interval is the polling cadence (default Threshold/2, so a
	// stall is detected within 1.5 thresholds of starting).
	Interval time.Duration
	// OnStall receives each finding, called from the watchdog
	// goroutine; it must not block for long (the next poll waits on
	// it).  Optional — the Stalls counter is bumped either way.
	OnStall func(Stall)
}

// lockWatch is the watchdog's per-lock memory between ticks.
type lockWatch struct {
	lastWriteAcquires uint64
	progressAt        time.Time // last time write progress (or an empty queue) was seen
	arbFired          bool      // arbitration stall reported for the current episode
	graceFiredAt      int64     // GraceActiveNS stamp already reported
}

// Watchdog is a running stall monitor; see Registry.StartWatchdog.
type Watchdog struct {
	reg  *Registry
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}
}

// StartWatchdog spawns the monitor goroutine over r's registered
// locks (sources added after the start are picked up on their first
// tick).  Each stuck episode fires OnStall once — the same stall is
// not re-reported every tick; a new episode (write progress resumes
// and stops again, or a new grace period wedges) fires again.
func (r *Registry) StartWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("rwstats: watchdog needs a positive Threshold")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Threshold / 2
	}
	w := &Watchdog{
		reg:  r,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w, nil
}

// Stop tears the monitor down and waits for its goroutine to exit.
// Safe to call once.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	state := make(map[string]*lockWatch)
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.tick(state)
		}
	}
}

func (w *Watchdog) tick(state map[string]*lockWatch) {
	now := time.Now()
	seen := make(map[string]bool)
	for _, l := range w.reg.lockSources() {
		seen[l.name] = true
		lw := state[l.name]
		if lw == nil {
			lw = &lockWatch{progressAt: now, lastWriteAcquires: l.st.WriteAcquires.Load()}
			state[l.name] = lw
		}
		w.check(now, l.name, l.st, lw)
	}
	for name := range state {
		if !seen[name] {
			delete(state, name)
		}
	}
}

func (w *Watchdog) fire(st *rwlock.LockStats, s Stall) {
	st.Stalls.Add(1)
	if w.cfg.OnStall != nil {
		w.cfg.OnStall(s)
	}
}

func (w *Watchdog) check(now time.Time, name string, st *rwlock.LockStats, lw *lockWatch) {
	// Grace layer first: while a grace period is in progress, any
	// arbitration backlog behind it is downstream, so the grace wait
	// is THE blocking layer and the arbitration timer is held back.
	if g := st.GraceActiveNS.Load(); g != 0 {
		if age := now.UnixNano() - g; age >= int64(w.cfg.Threshold) && g != lw.graceFiredAt {
			lw.graceFiredAt = g
			w.fire(st, Stall{Lock: name, Layer: StallGrace, Duration: time.Duration(age)})
		}
		lw.progressAt = now
		lw.arbFired = false
		return
	}
	lw.graceFiredAt = 0

	wa := st.WriteAcquires.Load()
	if wa != lw.lastWriteAcquires || st.QueueDepth.Load() == 0 {
		// Progress, or nobody waiting: a healthy arbiter.
		lw.lastWriteAcquires = wa
		lw.progressAt = now
		lw.arbFired = false
		return
	}
	if age := now.Sub(lw.progressAt); age >= w.cfg.Threshold && !lw.arbFired {
		lw.arbFired = true
		w.fire(st, Stall{Lock: name, Layer: StallArbitration, Duration: age})
	}
}
