// Package rwstats exports the rwlock/rwmap observability seams to
// standard monitoring surfaces.
//
// The rwlock package's WithStats seam fills a per-lock
// rwlock.LockStats block with always-coherent atomic counters, and
// rwmap.Map.Heatmap snapshots per-stripe traffic; this package is the
// delivery layer over both:
//
//   - Registry names the sources: RegisterLock attaches a LockStats
//     block under a name, RegisterMap attaches anything with a
//     Heatmap method (an rwmap.Map of any type parameters).
//   - Registry.ServeHTTP serves one JSON document of every source's
//     snapshot — mount it at /debug/rwsync.
//   - Registry.Prometheus serves the same counters in the Prometheus
//     text exposition format (one series per lock label).
//   - Registry.PublishExpvar publishes the snapshot as an expvar
//     variable, visible through /debug/vars.
//   - Registry.StartWatchdog runs the stall monitor: a writer stuck
//     past a threshold is reported with the LAYER that is blocking it
//     (an epoch grace period, via the lock's grace register, or the
//     writer-arbitration queue, via queue depth without write
//     progress).  No goroutine exists until StartWatchdog, and Stop
//     tears it down.
//
// Every snapshot is taken with one atomic load per counter while
// traffic runs; serving a scrape never stops the locks.  The package
// depends only on the standard library and the sibling rwsync
// packages.
package rwstats
