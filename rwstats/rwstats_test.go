package rwstats

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rwsync/rwlock"
	"rwsync/rwmap"
)

// stopped reports whether the stop channel is closed.
func stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

func TestRegistryRegistration(t *testing.T) {
	r := NewRegistry()
	st := &rwlock.LockStats{}
	if err := r.RegisterLock("kv", st); err != nil {
		t.Fatalf("RegisterLock: %v", err)
	}
	if err := r.RegisterLock("kv", st); err == nil {
		t.Fatal("duplicate RegisterLock accepted")
	}
	if err := r.RegisterLock("", st); err == nil {
		t.Fatal("empty-name RegisterLock accepted")
	}
	if err := r.RegisterLock("nil", nil); err == nil {
		t.Fatal("nil-block RegisterLock accepted")
	}
	r.UnregisterLock("kv")
	if err := r.RegisterLock("kv", st); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
	m := rwmap.New[string, int]()
	if err := r.RegisterMap("m", m); err != nil {
		t.Fatalf("RegisterMap: %v", err)
	}
	if err := r.RegisterMap("m", m); err == nil {
		t.Fatal("duplicate RegisterMap accepted")
	}
}

// TestJSONHandlerUnderTraffic scrapes /debug/rwsync-style JSON while
// the sources are under live traffic and checks the decoded document
// is coherent.
func TestJSONHandlerUnderTraffic(t *testing.T) {
	r := NewRegistry()
	st := &rwlock.LockStats{}
	l := rwlock.NewBravoMWSF(rwlock.WithStats(st))
	if err := r.RegisterLock("bravo", st); err != nil {
		t.Fatal(err)
	}
	m := rwmap.New[int, int](rwmap.WithStripes(8), rwmap.WithHotSet(2))
	if err := r.RegisterMap("kv", m); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// A fixed minimum so traffic exists even if the scrape loop
			// outpaces the scheduler, then run until told to stop.
			for i := 0; i < 500 || !stopped(stop); i++ {
				tok := l.RLock()
				l.RUnlock(tok)
				if i%10 == 0 {
					wt := l.Lock()
					l.Unlock(wt)
				}
				m.Put(i%64, i)
				m.Get(i % 64)
			}
		}(g)
	}

	for i := 0; i < 20; i++ {
		req := httptest.NewRequest("GET", "/debug/rwsync?top=4", nil)
		rec := httptest.NewRecorder()
		r.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("Content-Type %q", ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("scrape %d: invalid JSON: %v", i, err)
		}
		ls, ok := snap.Locks["bravo"]
		if !ok {
			t.Fatal("lock \"bravo\" missing from snapshot")
		}
		// The live-stable subset: reads never outrun the counter.
		if ls.ReadContended > ls.ReadAcquires+ls.TrySheds+ls.CtxSheds {
			t.Fatalf("scrape %d: read_contended %d > read_acquires %d", i, ls.ReadContended, ls.ReadAcquires)
		}
		hm, ok := snap.Maps["kv"]
		if !ok {
			t.Fatal("map \"kv\" missing from snapshot")
		}
		if hm.Stripes != 8 || len(hm.Top) != 4 {
			t.Fatalf("scrape %d: heatmap stripes=%d top=%d", i, hm.Stripes, len(hm.Top))
		}
	}
	close(stop)
	wg.Wait()

	final := st.Snapshot()
	if err := final.CheckCoherence(); err != nil {
		t.Fatalf("quiescent CheckCoherence: %v", err)
	}
	if final.ReadAcquires == 0 || final.WriteAcquires == 0 {
		t.Fatal("no traffic recorded")
	}
}

// TestPrometheusHandler checks the exposition format: headers before
// series, every family well-formed, values matching the block.
func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	st := &rwlock.LockStats{}
	l := rwlock.NewMWSF(rwlock.WithStats(st))
	for i := 0; i < 100; i++ {
		tok := l.RLock()
		l.RUnlock(tok)
	}
	wt := l.Lock()
	l.Unlock(wt)
	if err := r.RegisterLock(`k"v`, st); err != nil { // quote in the name exercises escaping
		t.Fatal(err)
	}
	m := rwmap.New[string, int](rwmap.WithStripes(4), rwmap.WithHotSet(1))
	m.Put("a", 1)
	if err := r.RegisterMap("kv", m); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Prometheus().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	body := rec.Body.String()
	if body == "" {
		t.Fatal("empty exposition")
	}
	want := []string{
		"# TYPE rwsync_lock_read_acquires_total counter",
		"rwsync_lock_read_acquires_total{lock=\"k\\\"v\"} 100",
		"rwsync_lock_write_acquires_total{lock=\"k\\\"v\"} 1",
		"# TYPE rwsync_lock_queue_depth gauge",
		"rwsync_lock_queue_depth{lock=\"k\\\"v\"} 0",
		"# TYPE rwsync_map_stripes gauge",
		"rwsync_map_stripes{map=\"kv\"} 4",
		"rwsync_map_stripe_entries{map=\"kv\"",
	}
	for _, w := range want {
		if !strings.Contains(body, w) {
			t.Errorf("exposition missing %q", w)
		}
	}
	// Well-formedness: every non-comment line is `name{labels} value`
	// and every family announces TYPE before its first series.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.IndexByte(line, '{')
		if brace < 1 {
			t.Fatalf("malformed series line %q", line)
		}
		if !typed[line[:brace]] {
			t.Fatalf("series %q before its # TYPE header", line)
		}
		if !strings.Contains(line[brace:], "} ") {
			t.Fatalf("malformed series line %q", line)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	st := &rwlock.LockStats{}
	if err := r.RegisterLock("kv", st); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishExpvar("rwsync_test_registry"); err != nil {
		t.Fatalf("PublishExpvar: %v", err)
	}
	if err := r.PublishExpvar("rwsync_test_registry"); err == nil {
		t.Fatal("duplicate PublishExpvar accepted")
	}
}

// TestWatchdogGraceStall wedges an epoch writer behind a held read
// passage and checks the watchdog names the grace layer, exactly once
// per episode.
func TestWatchdogGraceStall(t *testing.T) {
	st := &rwlock.LockStats{}
	e := rwlock.NewEpochMWSF(rwlock.WithStats(st))
	r := NewRegistry()
	if err := r.RegisterLock("epoch", st); err != nil {
		t.Fatal(err)
	}

	stalls := make(chan Stall, 16)
	w, err := r.StartWatchdog(WatchdogConfig{
		Threshold: 20 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		OnStall:   func(s Stall) { stalls <- s },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	rt := e.RLock() // the reader that never leaves
	done := make(chan struct{})
	go func() {
		wt := e.Lock() // advances the epoch, wedges in the grace wait
		e.Unlock(wt)
		close(done)
	}()

	var s Stall
	select {
	case s = <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a wedged grace period")
	}
	if s.Layer != StallGrace || s.Lock != "epoch" {
		t.Fatalf("stall = %+v, want grace/epoch", s)
	}
	if s.Duration < 20*time.Millisecond {
		t.Errorf("reported duration %v below threshold", s.Duration)
	}

	// Same episode must not re-fire.
	select {
	case s2 := <-stalls:
		t.Fatalf("second firing for the same episode: %+v", s2)
	case <-time.After(100 * time.Millisecond):
	}

	e.RUnlock(rt) // end the episode
	<-done
	if got := st.Snapshot().Stalls; got != 1 {
		t.Errorf("stalls counter %d, want 1", got)
	}
}

// TestWatchdogArbitrationStall queues a writer behind a holder that
// never releases and checks the watchdog names the arbitration layer.
func TestWatchdogArbitrationStall(t *testing.T) {
	st := &rwlock.LockStats{}
	l := rwlock.NewMWSF(rwlock.WithStats(st))
	r := NewRegistry()
	if err := r.RegisterLock("mwsf", st); err != nil {
		t.Fatal(err)
	}

	stalls := make(chan Stall, 16)
	w, err := r.StartWatchdog(WatchdogConfig{
		Threshold: 20 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		OnStall:   func(s Stall) { stalls <- s },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	hold := l.Lock() // the holder that never releases
	done := make(chan struct{})
	go func() {
		wt := l.Lock() // queues behind the holder
		l.Unlock(wt)
		close(done)
	}()

	var s Stall
	select {
	case s = <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a stuck arbitration queue")
	}
	if s.Layer != StallArbitration || s.Lock != "mwsf" {
		t.Fatalf("stall = %+v, want arbitration/mwsf", s)
	}

	select {
	case s2 := <-stalls:
		t.Fatalf("second firing for the same episode: %+v", s2)
	case <-time.After(100 * time.Millisecond):
	}

	l.Unlock(hold)
	<-done
	if got := st.Snapshot().Stalls; got != 1 {
		t.Errorf("stalls counter %d, want 1", got)
	}

	// A NEW episode (progress, then stuck again) fires again.
	hold2 := l.Lock()
	done2 := make(chan struct{})
	go func() {
		wt := l.Lock()
		l.Unlock(wt)
		close(done2)
	}()
	select {
	case s = <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire on a second episode")
	}
	if s.Layer != StallArbitration {
		t.Fatalf("second stall = %+v, want arbitration", s)
	}
	l.Unlock(hold2)
	<-done2
}

// TestWatchdogQuietOnHealthyTraffic runs ordinary traffic and checks
// the watchdog stays silent.
func TestWatchdogQuietOnHealthyTraffic(t *testing.T) {
	st := &rwlock.LockStats{}
	l := rwlock.NewMWSF(rwlock.WithStats(st))
	r := NewRegistry()
	if err := r.RegisterLock("mwsf", st); err != nil {
		t.Fatal(err)
	}
	fired := make(chan Stall, 16)
	w, err := r.StartWatchdog(WatchdogConfig{
		Threshold: 20 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		OnStall:   func(s Stall) { fired <- s },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	deadline := time.Now().Add(150 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				wt := l.Lock()
				l.Unlock(wt)
				rt := l.RLock()
				l.RUnlock(rt)
			}
		}()
	}
	wg.Wait()
	select {
	case s := <-fired:
		t.Fatalf("watchdog fired on healthy traffic: %+v", s)
	default:
	}
	if got := st.Snapshot().Stalls; got != 0 {
		t.Errorf("stalls counter %d on healthy traffic", got)
	}
}
