package rwstats

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"rwsync/rwlock"
	"rwsync/rwmap"
)

// HeatmapSource is the rwmap seam: any rwmap.Map[K, V] satisfies it
// regardless of its type parameters, which is what lets a registry
// hold maps of different shapes.
type HeatmapSource interface {
	Heatmap(top int) rwmap.Heatmap
}

// defaultHeatmapTop is how many stripes a registry snapshot reports
// per map unless the scrape asks otherwise (?top=N on the handlers).
const defaultHeatmapTop = 8

// Registry names observability sources and serves them.  The zero
// value is not ready; use NewRegistry.  All methods are safe for
// concurrent use — registration may race with scrapes.
type Registry struct {
	mu    sync.RWMutex
	locks map[string]*rwlock.LockStats
	maps  map[string]HeatmapSource
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		locks: make(map[string]*rwlock.LockStats),
		maps:  make(map[string]HeatmapSource),
	}
}

// RegisterLock attaches st under name.  The same block may be
// registered under several registries; registering a name twice in
// one registry is an error (unregister first to replace).
func (r *Registry) RegisterLock(name string, st *rwlock.LockStats) error {
	if name == "" || st == nil {
		return fmt.Errorf("rwstats: RegisterLock needs a name and a non-nil block")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.locks[name]; dup {
		return fmt.Errorf("rwstats: lock %q already registered", name)
	}
	r.locks[name] = st
	return nil
}

// RegisterMap attaches src (typically an *rwmap.Map) under name.
func (r *Registry) RegisterMap(name string, src HeatmapSource) error {
	if name == "" || src == nil {
		return fmt.Errorf("rwstats: RegisterMap needs a name and a non-nil source")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.maps[name]; dup {
		return fmt.Errorf("rwstats: map %q already registered", name)
	}
	r.maps[name] = src
	return nil
}

// UnregisterLock removes a named lock source; unknown names are a
// no-op.
func (r *Registry) UnregisterLock(name string) {
	r.mu.Lock()
	delete(r.locks, name)
	r.mu.Unlock()
}

// UnregisterMap removes a named map source; unknown names are a
// no-op.
func (r *Registry) UnregisterMap(name string) {
	r.mu.Lock()
	delete(r.maps, name)
	r.mu.Unlock()
}

// lockSources returns the registered locks as a name-sorted slice —
// the iteration order every exporter uses, so scrapes are stable.
func (r *Registry) lockSources() []struct {
	name string
	st   *rwlock.LockStats
} {
	r.mu.RLock()
	out := make([]struct {
		name string
		st   *rwlock.LockStats
	}, 0, len(r.locks))
	for n, st := range r.locks {
		out = append(out, struct {
			name string
			st   *rwlock.LockStats
		}{n, st})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Registry) mapSources() []struct {
	name string
	src  HeatmapSource
} {
	r.mu.RLock()
	out := make([]struct {
		name string
		src  HeatmapSource
	}, 0, len(r.maps))
	for n, src := range r.maps {
		out = append(out, struct {
			name string
			src  HeatmapSource
		}{n, src})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot is one registry-wide scrape: every lock block's snapshot
// and every map's heatmap, keyed by registered name.
type Snapshot struct {
	Locks map[string]rwlock.LockStatsSnapshot `json:"locks"`
	Maps  map[string]rwmap.Heatmap            `json:"maps"`
}

// Snapshot scrapes every registered source.  top bounds each map's
// reported stripes (<= 0 means the defaultHeatmapTop, not all — pass
// rwmap's Stripes() explicitly for a full grid).
func (r *Registry) Snapshot(top int) Snapshot {
	if top <= 0 {
		top = defaultHeatmapTop
	}
	s := Snapshot{
		Locks: make(map[string]rwlock.LockStatsSnapshot),
		Maps:  make(map[string]rwmap.Heatmap),
	}
	for _, l := range r.lockSources() {
		s.Locks[l.name] = l.st.Snapshot()
	}
	for _, m := range r.mapSources() {
		s.Maps[m.name] = m.src.Heatmap(top)
	}
	return s
}

// topOf parses the scrape-depth query parameter.
func topOf(req *http.Request) int {
	if v := req.URL.Query().Get("top"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 0
}

// ServeHTTP serves the JSON snapshot — the /debug/rwsync document.
// ?top=N widens or narrows the per-map heatmap depth.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot(topOf(req))); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// PublishExpvar publishes the registry's snapshot as the expvar
// variable name (shown by /debug/vars).  expvar names are global and
// permanent, so a duplicate is an error rather than a replace.
func (r *Registry) PublishExpvar(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("rwstats: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot(0) }))
	return nil
}
